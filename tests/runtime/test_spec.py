"""RunSpec identity: canonical form, content keys, seed derivation."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import TREE_ENTRYPOINT, tree_runspec
from repro.experiments.runner import TreeExperimentSpec
from repro.runtime import RunSpec, code_version, derive_seed, replicate
from repro.topology.cases import TREE_CASES

ECHO = "repro.runtime._testing:echo"


def test_canonical_is_order_free():
    a = RunSpec(ECHO, {"x": 1, "y": 2.0})
    b = RunSpec(ECHO, {"y": 2, "x": 1})
    assert a.canonical() == b.canonical()
    assert a == b
    assert hash(a) == hash(b)


def test_canonical_distinguishes_params_and_entrypoint():
    base = RunSpec(ECHO, {"x": 1})
    assert base != RunSpec(ECHO, {"x": 2})
    assert base != RunSpec("repro.runtime._testing:boom", {"x": 1})
    assert base.key() != base.with_params(x=2).key()


def test_key_mixes_code_version():
    spec = RunSpec(ECHO, {"x": 1})
    assert spec.key("codeA") != spec.key("codeB")
    assert spec.key(code_version()) == spec.key(code_version())


def test_label_does_not_change_identity():
    assert RunSpec(ECHO, {"x": 1}, label="a") == RunSpec(ECHO, {"x": 1}, label="b")


def test_entrypoint_must_have_colon():
    with pytest.raises(ConfigurationError):
        RunSpec("repro.runtime._testing.echo")


def test_resolve_and_describe():
    spec = RunSpec(ECHO, {"x": 1})
    assert spec.resolve()({"x": 1})["params"] == {"x": 1}
    assert "echo" in spec.describe()
    with pytest.raises(ConfigurationError):
        RunSpec("repro.runtime._testing:missing", {}).resolve()


def test_unserializable_param_rejected():
    with pytest.raises(ConfigurationError):
        RunSpec(ECHO, {"bad": object()}).canonical()


def test_tree_spec_canonicalizes_and_pickles():
    tree = TreeExperimentSpec(case=TREE_CASES[5], duration=8.0, warmup=4.0)
    spec = tree_runspec(tree)
    assert spec.entrypoint == TREE_ENTRYPOINT
    # the nested dataclasses flatten deterministically ...
    assert spec.canonical() == tree_runspec(tree).canonical()
    # ... and a changed knob changes the identity
    other = TreeExperimentSpec(case=TREE_CASES[5], duration=9.0, warmup=4.0)
    assert spec.canonical() != tree_runspec(other).canonical()
    # specs must cross process boundaries intact
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_derive_seed_stable_and_spread():
    assert derive_seed(1, "replica.1") == derive_seed(1, "replica.1")
    seeds = {derive_seed(1, f"replica.{i}") for i in range(100)}
    assert len(seeds) == 100
    assert derive_seed(1, "replica.1") != derive_seed(2, "replica.1")


def test_replicate_prefix_stable():
    spec = RunSpec(ECHO, {"seed": 7, "x": 1})
    five = replicate(spec, 5)
    three = replicate(spec, 3)
    assert five[:3] == three
    assert five[0].params["seed"] == 7  # replica 0 keeps the base seed
    assert len({s.params["seed"] for s in five}) == 5
    for replica in five:
        assert replica.params["x"] == 1


def test_replicate_validation():
    with pytest.raises(ConfigurationError):
        replicate(RunSpec(ECHO, {"seed": 1}), 0)
    with pytest.raises(ConfigurationError):
        replicate(RunSpec(ECHO, {"x": 1}), 2)


def test_code_version_is_memoized_and_short():
    assert code_version() == code_version()
    assert len(code_version()) == 16
