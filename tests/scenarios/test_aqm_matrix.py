"""The AQM x heterogeneity matrix: grid construction, determinism,
checkpoint round-trips and per-cohort fairness columns."""

import pickle
import random

import pytest

from repro.checkpoint import resolve_entrypoint, restore
from repro.errors import ConfigurationError
from repro.net.network import GATEWAY_DISCIPLINES
from repro.scenarios import (
    PACKET_MIXES,
    RTT_SPREADS,
    GridSpec,
    PacketSizeMix,
    RttCohortTopology,
    ScenarioSpec,
    format_grid,
    grid_cell,
    grid_specs,
    run_scenario,
)
from repro.scenarios.runner import build_scenario_world, snapshot_scenario_world

#: Small-but-shape-preserving horizon for simulation-backed tests.
DURATION, WARMUP = 4.0, 1.0

NEW_DISCIPLINES = ("red-byte", "red-adaptive", "codel", "pie")


def _cell(gateway, **overrides):
    spec = grid_cell(gateway, "trimodal", "wide", ecn=False,
                     duration=DURATION, warmup=WARMUP)
    return spec.replace(**overrides) if overrides else spec


# ----------------------------------------------------------- grid shape
def test_full_grid_skips_droptail_ecn():
    specs = grid_specs(GridSpec())
    cells = len(GATEWAY_DISCIPLINES) * len(PACKET_MIXES) * len(RTT_SPREADS)
    assert len(specs) == 2 * cells - len(PACKET_MIXES) * len(RTT_SPREADS)
    assert not any(s.gateway == "droptail" and s.ecn for s in specs)
    # every discipline appears, every spec validates
    assert {s.gateway for s in specs} == set(GATEWAY_DISCIPLINES)
    for spec in specs:
        spec.validate()


def test_grid_axes_can_be_restricted():
    grid = GridSpec(disciplines=("codel",), mixes=("uniform",),
                    spreads=("wide",), ecn_modes=(False,))
    specs = grid_specs(grid)
    assert len(specs) == 1
    assert specs[0].gateway == "codel"
    assert specs[0].packet_sizes is None


def test_grid_validation():
    with pytest.raises(ConfigurationError):
        grid_specs(GridSpec(disciplines=("fifo",)))
    with pytest.raises(ConfigurationError):
        grid_specs(GridSpec(mixes=("jumbo",)))
    with pytest.raises(ConfigurationError):
        grid_specs(GridSpec(spreads=("galactic",)))


def test_spec_rejects_droptail_ecn():
    with pytest.raises(ConfigurationError):
        ScenarioSpec(name="bad", gateway="droptail", ecn=True).validate()


def test_packet_mix_draw_and_mean():
    mix = PacketSizeMix(mice_weight=1.0, bulk_weight=0.0, video_weight=0.0)
    rng = random.Random(1)
    assert {mix.draw(rng) for _ in range(10)} == {mix.mice_size}
    assert mix.mean_size == mix.mice_size
    with pytest.raises(ConfigurationError):
        PacketSizeMix(mice_weight=0.0, bulk_weight=0.0,
                      video_weight=0.0).validate()


def test_rtt_cohort_topology_validation():
    with pytest.raises(ConfigurationError):
        RttCohortTopology(fast_delay_ms=50.0, slow_delay_ms=10.0).validate()
    with pytest.raises(ConfigurationError):
        RttCohortTopology(fast_hosts=0).validate()


# ------------------------------------------------ rows, cohorts, determinism
@pytest.mark.parametrize("gateway", NEW_DISCIPLINES)
def test_new_disciplines_run_audited_and_deterministically(gateway):
    """Every new discipline: audited clean run, same-seed identical rows."""
    spec = _cell(gateway, audited=True)
    first = run_scenario(spec)
    second = run_scenario(spec)
    assert pickle.dumps(first) == pickle.dumps(second)
    assert first["sim_stats"]["violations"] == 0
    # cohort columns present, one per RTT class, jain inside [1/n, 1]
    cohorts = first["cohorts"]
    assert set(cohorts) == {"fast", "slow"}
    for entry in cohorts.values():
        assert 0.0 < entry["jain"] <= 1.0
    reseeded = run_scenario(spec.replace(seed=spec.seed + 1))
    assert pickle.dumps(reseeded) != pickle.dumps(first)


@pytest.mark.parametrize("gateway", NEW_DISCIPLINES)
def test_new_disciplines_checkpoint_round_trip(gateway):
    """Snapshot mid-flight, restore, finish: byte-identical report rows."""
    spec = _cell(gateway)
    straight = pickle.dumps(run_scenario(spec))
    world = build_scenario_world(spec)
    try:
        snapshot = snapshot_scenario_world(world, at=2.0)
    finally:
        world.disarm()
    finish = resolve_entrypoint(snapshot.resume)
    assert pickle.dumps(finish(restore(snapshot))) == straight


def test_ecn_cells_mark_instead_of_dropping():
    spec = _cell("pie", ecn=True)
    row = run_scenario(spec)
    assert row["sim_stats"]["ecn_marks"] > 0


def test_legacy_row_keys_unchanged():
    """Byte-identity guard: legacy configs must not grow new row keys."""
    spec = ScenarioSpec(name="legacy", duration=DURATION, warmup=WARMUP)
    row = run_scenario(spec)
    assert "cohorts" not in row
    assert "evicted" not in row["sim_stats"]
    assert "ecn_marks" not in row["sim_stats"]


def test_format_grid_table():
    grid = GridSpec(disciplines=("codel",), mixes=("uniform",),
                    spreads=("wide",), ecn_modes=(False,),
                    duration=DURATION, warmup=WARMUP)
    specs = grid_specs(grid)
    rows = [run_scenario(spec) for spec in specs]
    table = format_grid(specs, rows)
    assert "codel" in table and "uniform" in table and "wide" in table
    assert "fastJ" in table and "slowB" in table
