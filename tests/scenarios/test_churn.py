"""Churn schedules: determinism and invariants; the driver against a session."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.rla.session import RLASession
from repro.scenarios import ChurnDriver, ChurnSpec, churn_schedule

HOSTS = [f"H{i}" for i in range(8)]


def _replay_members(initial, events):
    """Member-count trace after each event, asserting join/leave legality."""
    members = set(initial)
    counts = []
    for _t, kind, host in events:
        if kind == "join":
            assert host not in members
            members.add(host)
        else:
            assert host in members
            members.discard(host)
        counts.append(len(members))
    return counts


def test_schedule_deterministic():
    spec = ChurnSpec(arrival_rate_per_s=0.8, mean_hold_s=5.0,
                     initial_members=3, min_members=2)
    runs = [churn_schedule(spec, HOSTS, 60.0, random.Random(13))
            for _ in range(2)]
    assert runs[0] == runs[1]


def test_schedule_invariants():
    spec = ChurnSpec(arrival_rate_per_s=1.0, mean_hold_s=4.0,
                     initial_members=3, min_members=2)
    initial, events = churn_schedule(spec, HOSTS, 80.0, random.Random(21))
    assert len(initial) == 3
    assert len(set(initial)) == 3
    times = [t for t, _k, _h in events]
    assert times == sorted(times)
    assert all(0.0 <= t < 80.0 for t in times)
    counts = _replay_members(initial, events)
    assert all(count >= spec.min_members for count in counts)
    assert any(kind == "join" for _t, kind, _h in events)
    assert any(kind == "leave" for _t, kind, _h in events)


def test_pareto_holds_also_respect_floor():
    spec = ChurnSpec(arrival_rate_per_s=1.0, mean_hold_s=3.0,
                     hold_dist="pareto", pareto_alpha=1.5,
                     initial_members=2, min_members=2)
    initial, events = churn_schedule(spec, HOSTS, 60.0, random.Random(5))
    counts = _replay_members(initial, events)
    assert all(count >= 2 for count in counts)


def test_no_arrivals_keeps_initial_members():
    spec = ChurnSpec(arrival_rate_per_s=0.0, mean_hold_s=2.0,
                     initial_members=3, min_members=3)
    initial, events = churn_schedule(spec, HOSTS, 30.0, random.Random(1))
    # holds expire but the floor equals the population: nobody may leave
    assert events == []
    assert len(initial) == 3


def test_needs_enough_hosts():
    spec = ChurnSpec(initial_members=4, min_members=1)
    with pytest.raises(ConfigurationError):
        churn_schedule(spec, ["H0", "H1"], 10.0, random.Random(1))


@pytest.mark.parametrize("bad", [
    ChurnSpec(arrival_rate_per_s=-1.0),
    ChurnSpec(mean_hold_s=0.0),
    ChurnSpec(hold_dist="uniform"),
    ChurnSpec(hold_dist="pareto", pareto_alpha=1.0),
    ChurnSpec(initial_members=0),
    ChurnSpec(initial_members=2, min_members=3),
])
def test_invalid_specs_rejected(bad):
    with pytest.raises(ConfigurationError):
        bad.validate()


def test_driver_applies_events_to_live_session(sim, star_net):
    session = RLASession(sim, star_net, "rla-0", "S", ["R1", "R2"])
    session.start()
    driver = ChurnDriver(sim, session, [
        (2.0, "join", "R3"),
        (5.0, "leave", "R1"),
    ])
    driver.start()
    sim.run(until=10.0)
    assert driver.applied == [(2.0, "join", "R3"), (5.0, "leave", "R1")]
    assert sorted(session.receivers) == ["R2", "R3"]
    assert session.joins == 1 and session.leaves == 1
