"""Scenario runner: acceptance churn run, worker determinism, catalog."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime import ResultCache
from repro.runtime.spec import code_version
from repro.scenarios import (
    ScenarioSpec,
    WaxmanTopology,
    format_catalog,
    format_scenarios,
    get_scenario,
    run_scenario,
    run_scenario_spec,
    run_scenarios,
    scenario_names,
)


def _short(name, **overrides):
    overrides.setdefault("duration", 5.0)
    overrides.setdefault("warmup", 2.0)
    return get_scenario(name, **overrides)


# ----------------------------------------------------------------------
# the acceptance scenario: churn + mice over a generated Waxman graph
# ----------------------------------------------------------------------
def test_audited_churn_scenario_is_clean():
    row = run_scenario(_short("waxman-churn", duration=8.0, warmup=3.0,
                              audited=True))
    assert row["sim_stats"]["violations"] == 0
    assert row["sim_stats"]["audit_checks"] > 0
    assert row["joins"] > 0 and row["leaves"] > 0
    assert row["churn_applied"] == row["joins"] + row["leaves"]
    assert row["rla_pps"] > 0
    assert 0.0 < row["jain"] <= 1.0
    assert row["ratio"] > 0
    assert row["mice_started"] > 0


def test_scenario_rows_are_json_serializable():
    row = run_scenario(_short("waxman-steady"))
    assert json.loads(json.dumps(row)) == row


# ----------------------------------------------------------------------
# determinism: serial == parallel, cache digests stable across workers
# ----------------------------------------------------------------------
def test_same_spec_same_row():
    spec = _short("waxman-churn")
    assert run_scenario(spec) == run_scenario(spec)


def test_seed_changes_row():
    base = _short("waxman-steady")
    assert run_scenario(base) != run_scenario(base.replace(seed=2))


def test_workers_and_cache_reproduce_serial_rows(tmp_path):
    specs = [_short("waxman-churn"), _short("waxman-steady")]
    serial = run_scenarios(specs)

    cache = ResultCache(str(tmp_path / "cache"))
    first: list = []
    parallel = run_scenarios(specs, workers=2, cache=cache, outcomes=first)
    assert parallel == serial
    assert all(not outcome.cached for outcome in first)

    # replay from cache with a different worker count: identical rows,
    # identical content digests, zero new simulation
    second: list = []
    replay = run_scenarios(specs, workers=1, cache=cache, outcomes=second)
    assert replay == serial
    assert all(outcome.cached for outcome in second)
    code = code_version()
    digests_first = [outcome.spec.key(code) for outcome in first]
    digests_second = [outcome.spec.key(code) for outcome in second]
    assert digests_first == digests_second


def test_entrypoint_matches_direct_call():
    spec = _short("waxman-steady")
    assert run_scenario_spec({"spec": spec}) == run_scenario(spec)


# ----------------------------------------------------------------------
# spec validation and catalog
# ----------------------------------------------------------------------
def test_receivers_beyond_hosts_rejected():
    spec = ScenarioSpec(name="tiny", topology=WaxmanTopology(n=5),
                        receivers=50, duration=2.0, warmup=1.0)
    with pytest.raises(ConfigurationError):
        run_scenario(spec)


@pytest.mark.parametrize("bad", [
    dict(name=""),
    dict(name="x", duration=0.0),
    dict(name="x", warmup=-1.0),
    dict(name="x", gateway="fifo"),
    dict(name="x", churn=None, receivers=0),
])
def test_invalid_scenario_specs_rejected(bad):
    with pytest.raises(ConfigurationError):
        ScenarioSpec(**bad).validate()


def test_catalog_names_resolve_and_validate():
    names = scenario_names()
    assert "waxman-churn" in names
    for name in names:
        spec = get_scenario(name)
        assert spec.name == name
        spec.validate()


def test_get_scenario_applies_overrides():
    spec = get_scenario("waxman-churn", seed=9, gateway="red", audited=True)
    assert spec.seed == 9
    assert spec.gateway == "red"
    assert spec.audited


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError):
        get_scenario("no-such-scenario")


def test_format_catalog_lists_every_entry():
    listing = format_catalog()
    for name in scenario_names():
        assert name in listing


def test_format_scenarios_renders_rows():
    row = run_scenario(_short("waxman-steady"))
    table = format_scenarios([row])
    assert "waxman-steady" in table
    assert "jain" in table
    # the unaudited row renders a dash-free numeric jain and a viol dash
    assert table.strip().endswith("-")
