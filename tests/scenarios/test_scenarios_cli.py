"""The ``repro-rla scenarios`` CLI surface."""

import pytest

from repro.cli import main


def test_scenarios_list(capsys):
    assert main(["scenarios", "list"]) == 0
    out = capsys.readouterr().out
    assert "waxman-churn" in out
    assert "tree-churn" in out


def test_scenarios_run_prints_table(capsys):
    code = main(["scenarios", "run", "waxman-steady",
                 "--duration", "4", "--warmup", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "waxman-steady" in out
    assert "jain" in out


def test_scenarios_run_audited_with_metrics(capsys):
    code = main(["scenarios", "run", "waxman-churn",
                 "--duration", "5", "--warmup", "2", "--audit", "--metrics"])
    assert code == 0
    out = capsys.readouterr().out
    assert "waxman-churn" in out
    assert "runtime summary" in out


def test_scenarios_run_unknown_name_fails(capsys):
    assert main(["scenarios", "run", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_scenarios_run_seed_override_changes_output(capsys):
    main(["scenarios", "run", "waxman-steady", "--duration", "4",
          "--warmup", "2"])
    base = capsys.readouterr().out
    main(["scenarios", "run", "waxman-steady", "--duration", "4",
          "--warmup", "2", "--seed", "3"])
    other = capsys.readouterr().out
    assert base != other
