"""Seeded topology generators: determinism, connectivity, parameter ranges."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.scenarios import (
    JitteredTreeTopology,
    TransitStubTopology,
    WaxmanTopology,
    build_topology,
)
from repro.sim.engine import Simulator

SPECS = [
    WaxmanTopology(n=16),
    TransitStubTopology(transits=2, stubs_per_transit=2, hosts_per_stub=2),
    JitteredTreeTopology(depth=2, fanout=3),
]


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: type(s).__name__)
def test_same_seed_same_topology(spec):
    draws = [
        build_topology(Simulator(seed=5), spec).link_draws
        for _ in range(2)
    ]
    assert draws[0] == draws[1]


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: type(s).__name__)
def test_hosts_and_source_deterministic(spec):
    topos = [build_topology(Simulator(seed=9), spec) for _ in range(2)]
    assert topos[0].source == topos[1].source
    assert topos[0].hosts == topos[1].hosts


def test_different_seeds_differ():
    spec = WaxmanTopology(n=16)
    a = build_topology(Simulator(seed=1), spec).link_draws
    b = build_topology(Simulator(seed=2), spec).link_draws
    assert a != b


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: type(s).__name__)
def test_generated_graph_is_connected(spec):
    topo = build_topology(Simulator(seed=3), spec)
    graph = nx.Graph()
    for a, b, _bw, _delay, _buf in topo.link_draws:
        graph.add_edge(a, b)
    graph.add_node(topo.source)
    assert nx.is_connected(graph)
    assert all(host in graph for host in topo.hosts)


def test_waxman_draws_within_ranges():
    spec = WaxmanTopology(n=14, bandwidth_mbps=(2.0, 4.0),
                          delay_ms=(3.0, 9.0), buffer_pkts=(10, 20))
    topo = build_topology(Simulator(seed=7), spec)
    assert topo.n_links >= 13  # connected on 14 nodes
    for _a, _b, bandwidth, delay, buffer_pkts in topo.link_draws:
        assert 2.0e6 <= bandwidth <= 4.0e6
        assert 0.003 <= delay <= 0.009
        assert 10 <= buffer_pkts <= 20


def test_transit_stub_shape():
    spec = TransitStubTopology(transits=3, stubs_per_transit=2, hosts_per_stub=2)
    topo = build_topology(Simulator(seed=4), spec)
    assert topo.source == "SRC"
    assert len(topo.hosts) == 3 * 2 * 2
    # ring core + stub routers + host links + source access link
    assert topo.n_links == 3 + 3 * 2 + 3 * 2 * 2 + 1


def test_jittered_tree_shape_and_jitter():
    spec = JitteredTreeTopology(depth=2, fanout=3, jitter=0.3)
    topo = build_topology(Simulator(seed=11), spec)
    assert len(topo.hosts) == 9  # fanout^depth leaves
    assert topo.source == "S"
    leaf_delays = {delay for _a, b, _bw, delay, _buf in topo.link_draws
                   if b.startswith("R")}
    assert len(leaf_delays) > 1  # jitter makes branches heterogeneous


def test_red_gateway_accepted():
    topo = build_topology(Simulator(seed=2), WaxmanTopology(n=10), gateway="red")
    assert topo.n_links >= 9


def test_unknown_gateway_rejected():
    with pytest.raises(TopologyError):
        build_topology(Simulator(seed=1), WaxmanTopology(n=10), gateway="fifo")


@pytest.mark.parametrize("bad", [
    WaxmanTopology(n=2),
    WaxmanTopology(alpha=0.0),
    WaxmanTopology(beta=-1.0),
    WaxmanTopology(bandwidth_mbps=(6.0, 1.5)),
    TransitStubTopology(transits=0),
    JitteredTreeTopology(depth=0),
    JitteredTreeTopology(jitter=1.5),
])
def test_invalid_specs_rejected(bad):
    with pytest.raises(TopologyError):
        build_topology(Simulator(seed=1), bad)


def test_unknown_spec_type_rejected():
    with pytest.raises(TopologyError):
        build_topology(Simulator(seed=1), object())
