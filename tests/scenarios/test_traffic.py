"""Background traffic: Pareto draws, on/off sources, web mice."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.apps import PacketSink
from repro.net.network import Network, droptail_factory
from repro.scenarios import (
    BackgroundTraffic,
    ParetoOnOffSource,
    WebMiceWorkload,
    pareto_draw,
    place_traffic,
)
from repro.sim.engine import Simulator
from repro.units import ms, pps_to_bps


def _line_net(sim, hosts=3, rate_pps=2000):
    net = Network(sim, default_queue=droptail_factory(50))
    for i in range(hosts):
        net.add_link("S", f"H{i}", pps_to_bps(rate_pps), ms(5))
    net.build_routes()
    return net


# ----------------------------------------------------------------------
# Pareto draws
# ----------------------------------------------------------------------
def test_pareto_draw_mean_and_floor():
    rng = random.Random(1)
    alpha, mean = 2.5, 1.0
    draws = [pareto_draw(rng, mean, alpha) for _ in range(20000)]
    xm = mean * (alpha - 1.0) / alpha
    assert all(d >= xm for d in draws)
    assert sum(draws) / len(draws) == pytest.approx(mean, rel=0.1)


def test_pareto_draw_rejects_bad_params():
    rng = random.Random(1)
    with pytest.raises(ConfigurationError):
        pareto_draw(rng, 1.0, 1.0)  # alpha must be > 1
    with pytest.raises(ConfigurationError):
        pareto_draw(rng, 0.0, 2.0)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [
    BackgroundTraffic(tcp_flows=-1),
    BackgroundTraffic(mice_rate_per_s=-0.5),
    BackgroundTraffic(pareto_sources=1, pareto_rate_pps=0.0),
    BackgroundTraffic(pareto_sources=1, pareto_alpha=1.0),
    BackgroundTraffic(mice_rate_per_s=1.0, mice_mean_pkts=0),
    BackgroundTraffic(mice_rate_per_s=1.0, mice_alpha=0.9),
])
def test_invalid_traffic_rejected(bad):
    with pytest.raises(ConfigurationError):
        bad.validate()


# ----------------------------------------------------------------------
# Pareto on/off source
# ----------------------------------------------------------------------
def test_onoff_source_bursts_and_pauses():
    sim = Simulator(seed=3)
    net = _line_net(sim, hosts=1)
    pump = ParetoOnOffSource(sim, net, "p0", "S", "H0", rate_pps=100,
                             mean_on_s=0.5, mean_off_s=0.5, alpha=1.5,
                             rng=random.Random(7))
    pump.start()
    sim.run(until=20.0)
    assert pump.bursts > 1                      # it toggled
    assert 0 < pump.sink.received < 100 * 20    # off periods bit into the rate


def test_onoff_source_deterministic():
    counts = []
    for _ in range(2):
        sim = Simulator(seed=3)
        net = _line_net(sim, hosts=1)
        pump = ParetoOnOffSource(sim, net, "p0", "S", "H0", rate_pps=100,
                                 mean_on_s=0.5, mean_off_s=0.5, alpha=1.5,
                                 rng=random.Random(7))
        pump.start()
        sim.run(until=10.0)
        counts.append((pump.bursts, pump.sink.received))
    assert counts[0] == counts[1]


# ----------------------------------------------------------------------
# web mice
# ----------------------------------------------------------------------
def test_mice_arrive_transfer_and_finish():
    sim = Simulator(seed=5)
    net = _line_net(sim, hosts=3)
    mice = WebMiceWorkload(sim, net, ["H0", "H1", "H2"], "S",
                           rate_per_s=2.0, mean_pkts=10, alpha=1.5,
                           max_pkts=50, rng=random.Random(9), stop_at=15.0)
    mice.start()
    sim.run(until=30.0)
    stats = mice.stats()
    assert stats["mice_started"] > 5
    assert stats["mice_finished"] == stats["mice_started"]  # all short, all done
    assert stats["mice_pkts_sent"] >= stats["mice_started"]
    # arrivals stop at the horizon
    assert all(m.sender.limit <= 50 for m in mice.mice)


def test_mice_respect_stop_at():
    sim = Simulator(seed=5)
    net = _line_net(sim, hosts=2)
    mice = WebMiceWorkload(sim, net, ["H0", "H1"], "S",
                           rate_per_s=5.0, mean_pkts=5, alpha=1.5,
                           max_pkts=20, rng=random.Random(2), stop_at=3.0)
    mice.start()
    sim.run(until=3.0)
    started_at_horizon = len(mice.mice)
    sim.run(until=10.0)
    assert len(mice.mice) == started_at_horizon


def test_mice_need_hosts():
    sim = Simulator(seed=1)
    net = _line_net(sim, hosts=1)
    with pytest.raises(ConfigurationError):
        WebMiceWorkload(sim, net, [], "S", rate_per_s=1.0, mean_pkts=5,
                        alpha=1.5, max_pkts=10, rng=random.Random(1),
                        stop_at=5.0)


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def test_place_traffic_instantiates_the_mix():
    sim = Simulator(seed=4)
    net = _line_net(sim, hosts=4)
    spec = BackgroundTraffic(tcp_flows=2, pareto_sources=1,
                             mice_rate_per_s=1.0)
    placed = place_traffic(sim, net, spec, ["H0", "H1", "H2", "H3"], "S",
                           duration=10.0, rng=random.Random(11))
    assert len(placed.tcp_flows) == 2
    assert len(placed.pareto_sources) == 1
    assert placed.mice is not None
    # long-lived flows land on distinct hosts
    dsts = [dst for _flow, dst in placed.tcp_placements]
    assert len(set(dsts)) == len(dsts)
    sim.run(until=10.0)
    assert all(f.receiver.stats()["distinct_received"] > 0
               for f in placed.tcp_flows)


def test_place_traffic_needs_hosts():
    sim = Simulator(seed=4)
    net = _line_net(sim, hosts=1)
    with pytest.raises(ConfigurationError):
        place_traffic(sim, net, BackgroundTraffic(), [], "S",
                      duration=5.0, rng=random.Random(1))
