"""The discrete-event engine: ordering, cancellation, determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.sim.engine import Simulator


def test_runs_events_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    executed = sim.run(until=2.0)
    assert executed == 1
    assert fired == [1]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run(until=10.0)
    assert fired == [1, 5]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule(0.5, lambda: None)


def test_schedule_after_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule_after(-0.1, lambda: None)


def test_schedule_at_now_runs_after_current_event():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(sim.now, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]


def test_cancelled_events_are_skipped():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    event.cancel()
    executed = sim.run()
    assert fired == ["y"]
    assert executed == 1


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    assert sim.pending() == 1


def test_max_events_guard():
    sim = Simulator()
    counter = []

    def recur():
        counter.append(1)
        sim.schedule_after(1.0, recur)

    sim.schedule(0.0, recur)
    sim.run(max_events=10)
    assert len(counter) == 10


def test_pending_and_peek():
    sim = Simulator()
    assert sim.peek() is None
    event = sim.schedule(4.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    assert sim.peek() == 2.0
    event.cancel()
    assert sim.pending() == 1


def test_events_executed_counter():
    sim = Simulator()
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda: None)
    sim.run()
    assert sim.events_executed == 3


def test_cancel_heavy_heap_stays_compact():
    # Regression: cancelled events used to linger until they surfaced at
    # the heap top, and pending() was an O(n) scan.  A long cancel-heavy
    # run (the TCP-timer pattern: schedule, cancel, reschedule) must keep
    # the physical heap near the live-event count.
    sim = Simulator()
    live = [sim.schedule(1e9, lambda: None) for _ in range(5)]
    for round_number in range(20):
        batch = [sim.schedule(1e6 + round_number, lambda: None)
                 for _ in range(1000)]
        for event in batch:
            event.cancel()
        assert sim.pending() == len(live)
    # far fewer than the 20_000 cancelled entries may remain
    assert sim.queue_size() <= len(live) + 2 * Simulator.COMPACT_MIN_CANCELLED
    assert sim.pending() == len(live)


def test_cancel_heavy_run_replays_identically():
    # Compaction must not disturb execution order (heap rebuild preserves
    # the (time, seq) ordering contract).
    def run_once():
        sim = Simulator(seed=9)
        order = []
        events = []
        for i in range(3000):
            events.append(sim.schedule(float(i % 7) + 1.0, order.append, i))
        for i, event in enumerate(events):
            if i % 3:
                event.cancel()
        sim.run()
        return order

    assert run_once() == run_once()
    assert len(run_once()) == 1000


def test_cancel_after_execution_does_not_corrupt_count():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    event.cancel()        # already executed: must be a no-op
    event.cancel()        # double-cancel: also a no-op
    assert sim.pending() == 1
    sim.run()
    assert sim.pending() == 0


def test_peek_updates_cancelled_count():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0
    assert sim.pending() == 1
    assert sim.queue_size() == 1


def test_reentrant_run_rejected():
    sim = Simulator()

    def inner():
        with pytest.raises(SchedulingError):
            sim.run()

    sim.schedule(1.0, inner)
    sim.run()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=50))
def test_property_arbitrary_times_fire_sorted(times):
    sim = Simulator()
    seen = []
    for t in times:
        sim.schedule(t, lambda t=t: seen.append(t))
    sim.run()
    assert seen == sorted(times)
    assert len(seen) == len(times)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_property_same_seed_same_stream(seed):
    a = Simulator(seed=seed).rng.stream("x")
    b = Simulator(seed=seed).rng.stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


# ----------------------------------------------------------------------
# same-timestamp ready batch (heap bypass for events scheduled at `now`)
# ----------------------------------------------------------------------
def test_ready_batch_runs_after_equal_time_heap_entries():
    # Events already queued at time T were scheduled earlier (smaller
    # seq), so immediates created while executing at T must run after
    # every one of them — FIFO-after-heap IS (time, seq) order.
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(sim.now, order.append, "immediate-1")
        sim.schedule_after(0.0, order.append, "immediate-2")

    sim.schedule(1.0, first)
    sim.schedule(1.0, order.append, "queued-tie")
    sim.schedule(2.0, order.append, "later")
    sim.run()
    assert order == ["first", "queued-tie", "immediate-1",
                     "immediate-2", "later"]


def test_ready_batch_chain_preserves_fifo():
    sim = Simulator()
    order = []

    def chain(n):
        order.append(n)
        if n < 5:
            sim.schedule_after(0.0, chain, n + 1)
            sim.schedule(sim.now, order.append, f"tail-{n}")

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert order == [0, 1, "tail-0", 2, "tail-1", 3, "tail-2",
                     4, "tail-3", 5, "tail-4"]


def test_ready_event_cancellation_honored():
    sim = Simulator()
    fired = []

    def first():
        keep = sim.schedule(sim.now, fired.append, "keep")
        drop = sim.schedule(sim.now, fired.append, "drop")
        drop.cancel()
        assert keep is not drop

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["keep"]
    assert sim.pending() == 0


def test_ready_batch_flushed_back_on_stop():
    # stop() can leave immediates behind; they must survive into the
    # next run() (via the heap) instead of being dropped.
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(sim.now, order.append, "leftover")
        sim.stop()

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first"]
    assert sim.pending() == 1
    assert sim.peek() == 1.0
    sim.run()
    assert order == ["first", "leftover"]


def test_ready_batch_flushed_back_on_max_events():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        for i in range(3):
            sim.schedule(sim.now, order.append, f"im-{i}")

    sim.schedule(1.0, first)
    executed = sim.run(max_events=2)
    assert executed == 2
    assert order == ["first", "im-0"]
    assert sim.pending() == 2  # im-1, im-2 parked back in the heap
    sim.run()
    assert order == ["first", "im-0", "im-1", "im-2"]


def test_peek_sees_ready_events_from_within_callback():
    sim = Simulator()
    seen = []

    def first():
        sim.schedule(sim.now, lambda: None)
        seen.append(sim.peek())  # ready head, no heap entries at all

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [1.0]


def test_schedule_at_now_outside_run_uses_heap():
    # The ready lane is only for events created *while running*; between
    # runs everything must land in the one totally ordered queue.
    sim = Simulator()
    fired = []
    sim.schedule(0.0, fired.append, "a")
    assert sim.pending() == 1
    assert sim.peek() == 0.0
    sim.run()
    assert fired == ["a"]


def test_ready_batch_replays_identically_under_compaction():
    # Cancel-heavy immediates at one timestamp: compaction may run while
    # the ready deque is populated; order and counts must be unaffected.
    def run_once():
        sim = Simulator()
        sim.COMPACT_MIN_CANCELLED = 4
        order = []

        def burst():
            events = [sim.schedule(sim.now, order.append, i)
                      for i in range(20)]
            for event in events[::2]:
                event.cancel()

        sim.schedule(1.0, burst)
        sim.run()
        return order, sim.events_executed

    assert run_once() == run_once()
    assert run_once()[0] == list(range(1, 20, 2))


# ----------------------------------------------------------------------
# cancel/peek/pending interleavings (lazy-cancellation accounting)
# ----------------------------------------------------------------------
def test_interleaved_cancel_peek_pending_accounting():
    # Regression guard for the peek()/_cancelled interaction: the seed
    # implementation popped cancelled heap entries in peek() WITHOUT
    # decrementing the lazy-cancellation counter, so a peek over
    # cancelled events made pending() under-count live events forever
    # after (and could push _cancelled above the physical queue size).
    # Interleave every operation pair and check the books at each step.
    sim = Simulator()
    events = {t: sim.schedule(float(t), lambda: None) for t in range(1, 9)}

    events[1].cancel()
    events[2].cancel()
    assert sim.pending() == 6
    assert sim.peek() == 3.0          # pops two cancelled entries
    assert sim.pending() == 6         # counter followed the pops
    assert sim.queue_size() == 6      # physically gone too

    events[4].cancel()
    assert sim.pending() == 5         # cancel after peek still counted once
    assert sim.peek() == 3.0          # head live: nothing to pop
    assert sim.pending() == 5

    # peek between cancels of the same head
    events[3].cancel()
    assert sim.peek() == 5.0
    events[5].cancel()                # note: 4 already cancelled, deeper
    assert sim.peek() == 6.0          # pops 5 and the buried 4
    assert sim.pending() == 3
    assert sim.queue_size() == 3

    executed = sim.run()
    assert executed == 3
    assert sim.pending() == 0
    assert sim.events_executed == 3


def test_peek_inside_callback_keeps_counts_with_cancelled_ready_events():
    # peek() also prunes the same-timestamp ready deque; cancelling an
    # immediate and then peeking from within the running callback must
    # keep pending() exact while the batch is still live.
    sim = Simulator()
    observed = []

    def burst():
        immediates = [sim.schedule(sim.now, observed.append, i)
                      for i in range(3)]
        immediates[0].cancel()
        observed.append(("peek", sim.peek(), sim.pending()))

    sim.schedule(1.0, burst)
    sim.schedule(2.0, observed.append, "tail")
    sim.run()
    # the cancelled immediate was pruned by peek (head of ready deque),
    # leaving 2 immediates + the 2.0 event pending at that instant
    assert observed[0] == ("peek", 1.0, 3)
    assert observed[1:] == [1, 2, "tail"]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["cancel", "peek", "pending"]),
                min_size=1, max_size=60),
       st.randoms(use_true_random=False))
def test_property_cancel_peek_pending_never_drift(ops, rng):
    # Ground-truth bookkeeping: after any interleaving of cancels and
    # peeks (with compaction forced on aggressively), pending() must
    # equal the number of live events and the eventual run() must
    # execute exactly those.
    sim = Simulator()
    sim.COMPACT_MIN_CANCELLED = 2     # force frequent compactions
    live = {t: sim.schedule(float(t + 1), lambda: None)
            for t in range(30)}
    for op in ops:
        if op == "cancel" and live:
            key = rng.choice(sorted(live))
            live.pop(key).cancel()
        elif op == "peek":
            head = sim.peek()
            expected = min(live) + 1.0 if live else None
            assert head == expected
        elif op == "pending":
            assert sim.pending() == len(live)
    assert sim.pending() == len(live)
    assert sim.run() == len(live)
