"""Event handles: ordering relations and cancellation flags."""

from repro.sim.events import Event


def _noop():
    pass


def test_ordering_by_time_then_seq():
    early = Event(1.0, 5, _noop)
    late = Event(2.0, 1, _noop)
    assert early < late
    first = Event(1.0, 1, _noop)
    second = Event(1.0, 2, _noop)
    assert first < second


def test_equality_and_hash():
    a = Event(1.0, 1, _noop)
    b = Event(1.0, 1, _noop)
    assert a == b
    assert hash(a) == hash(b)
    assert a != Event(1.0, 2, _noop)
    assert (a == "not an event") is False


def test_cancel_sets_flags():
    event = Event(1.0, 0, _noop)
    assert event.active
    event.cancel()
    assert event.cancelled
    assert not event.active


def test_repr_mentions_state():
    event = Event(1.5, 3, _noop, name="probe")
    assert "probe" in repr(event)
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)
