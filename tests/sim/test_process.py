"""Timers and periodic processes."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]
    assert not timer.pending


def test_timer_restart_resets_countdown():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.schedule(1.0, lambda: timer.start(2.0))  # restart at t=1
    sim.run()
    assert fired == [3.0]


def test_timer_stop_cancels():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    timer.stop()
    sim.run()
    assert fired == []
    assert timer.expiry is None


def test_timer_expiry_reports_absolute_time():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    timer.start(1.5)
    assert timer.expiry == pytest.approx(1.5)


def test_periodic_ticks_at_interval():
    sim = Simulator()
    ticks = []
    process = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
    process.start()
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]


def test_periodic_start_offset():
    sim = Simulator()
    ticks = []
    process = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now),
                              start_offset=0.25)
    process.start()
    sim.run(until=2.5)
    assert ticks == [0.25, 1.25, 2.25]


def test_periodic_stop():
    sim = Simulator()
    ticks = []
    process = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
    process.start()
    sim.schedule(2.5, process.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert not process.running


def test_periodic_double_start_is_noop():
    sim = Simulator()
    ticks = []
    process = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
    process.start()
    process.start()
    sim.run(until=1.5)
    assert ticks == [1.0]


def test_periodic_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        PeriodicProcess(sim, 0.0, lambda: None)
