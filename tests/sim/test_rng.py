"""Named random streams: determinism and independence."""

from repro.sim.rng import RngStreams


def test_same_name_same_object():
    streams = RngStreams(seed=1)
    assert streams.stream("a") is streams.stream("a")


def test_streams_are_independent_of_creation_order():
    forward = RngStreams(seed=7)
    x1 = forward.stream("x").random()
    y1 = forward.stream("y").random()

    backward = RngStreams(seed=7)
    y2 = backward.stream("y").random()
    x2 = backward.stream("x").random()
    assert x1 == x2
    assert y1 == y2


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").random()
    b = RngStreams(seed=2).stream("x").random()
    assert a != b


def test_different_names_differ():
    streams = RngStreams(seed=1)
    assert streams.stream("x").random() != streams.stream("y").random()


def test_uniform_shortcut_in_range():
    streams = RngStreams(seed=3)
    for _ in range(100):
        value = streams.uniform("jitter", 0.0, 0.005)
        assert 0.0 <= value <= 0.005


def test_names_listing():
    streams = RngStreams(seed=1)
    streams.stream("b")
    streams.stream("a")
    assert streams.names() == ["a", "b"]
