"""Structured tracing."""

from repro.sim.trace import Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "drop", flow="tcp-0")
    assert len(tracer) == 0


def test_records_and_select():
    tracer = Tracer()
    tracer.emit(1.0, "drop", flow="tcp-0")
    tracer.emit(2.0, "enqueue", flow="tcp-1")
    tracer.emit(3.0, "drop", flow="tcp-1")
    drops = tracer.select("drop")
    assert [time for time, _, _ in drops] == [1.0, 3.0]
    assert drops[0][2]["flow"] == "tcp-0"


def test_category_filter():
    tracer = Tracer(categories=["drop"])
    tracer.emit(1.0, "drop")
    tracer.emit(1.0, "enqueue")
    assert len(tracer) == 1


def test_sink_tees_to_storage():
    # Regression: records used to skip self.records entirely when a sink
    # was set, so select() and len() silently returned nothing.
    seen = []
    tracer = Tracer(sink=seen.append)
    tracer.emit(1.0, "drop", reason="overflow")
    assert seen[0][1] == "drop"
    assert len(tracer) == 1
    assert tracer.select("drop")[0][2]["reason"] == "overflow"


def test_sink_storage_is_bounded():
    tracer = Tracer(sink=lambda record: None, max_records=8)
    for i in range(100):
        tracer.emit(float(i), "tick", i=i)
    assert len(tracer) == 8
    assert tracer.select("tick")[0][2]["i"] == 92  # oldest retained


def test_unbounded_without_sink():
    tracer = Tracer()
    for i in range(5000):
        tracer.emit(float(i), "tick")
    assert len(tracer) == 5000


def test_clear():
    tracer = Tracer()
    tracer.emit(1.0, "x")
    tracer.clear()
    assert len(tracer) == 0
