"""Structured tracing."""

from repro.sim.trace import Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "drop", flow="tcp-0")
    assert len(tracer) == 0


def test_records_and_select():
    tracer = Tracer()
    tracer.emit(1.0, "drop", flow="tcp-0")
    tracer.emit(2.0, "enqueue", flow="tcp-1")
    tracer.emit(3.0, "drop", flow="tcp-1")
    drops = tracer.select("drop")
    assert [time for time, _, _ in drops] == [1.0, 3.0]
    assert drops[0][2]["flow"] == "tcp-0"


def test_category_filter():
    tracer = Tracer(categories=["drop"])
    tracer.emit(1.0, "drop")
    tracer.emit(1.0, "enqueue")
    assert len(tracer) == 1


def test_sink_bypasses_storage():
    seen = []
    tracer = Tracer(sink=seen.append)
    tracer.emit(1.0, "drop", reason="overflow")
    assert len(tracer) == 0
    assert seen[0][1] == "drop"


def test_clear():
    tracer = Tracer()
    tracer.emit(1.0, "x")
    tracer.clear()
    assert len(tracer) == 0
