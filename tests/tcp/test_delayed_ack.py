"""RFC 1122 delayed acknowledgments."""

import pytest

from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.net.packet import DATA, Packet
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.tcp.receiver import TcpReceiver


class _LoopbackNode(Node):
    def __init__(self):
        super().__init__("B")
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)


def _data(seq, sent_time=1.0):
    return Packet(DATA, "f", "A", "B", seq, 1000, sent_time=sent_time)


def _receiver(sim):
    node = _LoopbackNode()
    return TcpReceiver(sim, node, "f",
                       config=TcpConfig(delayed_ack=True)), node


def test_every_second_segment_acked():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(_data(0))
    assert node.sent == []          # first in-order segment: deferred
    receiver.on_packet(_data(1))
    assert len(node.sent) == 1      # second: ack both
    assert node.sent[0].ack == 2


def test_timer_flushes_lone_segment():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(_data(0))
    sim.run(until=0.5)              # 200 ms delack timer fires
    assert len(node.sent) == 1
    assert node.sent[0].ack == 1


def test_out_of_order_acks_immediately():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(_data(0))
    receiver.on_packet(_data(2))    # gap: immediate dupack with SACK
    assert len(node.sent) == 1
    assert node.sent[0].ack == 1
    assert node.sent[0].sack == ((2, 3),)


def test_duplicate_acks_immediately():
    sim = Simulator()
    receiver, node = _receiver(sim)
    receiver.on_packet(_data(0))
    receiver.on_packet(_data(1))
    receiver.on_packet(_data(1))    # duplicate
    assert len(node.sent) == 2


def test_halves_ack_traffic_on_clean_path(sim, two_node_net):
    config = TcpConfig(delayed_ack=True)
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B", config=config,
                   limit=400)
    flow.start()
    sim.run(until=60.0)
    assert flow.sender.finished
    assert flow.receiver.tracker.rcv_nxt == 400
    ratio = flow.receiver.acks_sent / 400
    assert ratio == pytest.approx(0.5, abs=0.15)


def test_loss_recovery_still_works(sim, two_node_net):
    # heavy overdrive against the 20-packet buffer forces losses
    config = TcpConfig(delayed_ack=True)
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B", config=config,
                   limit=2000)
    flow.start()
    sim.run(until=150.0)
    assert flow.sender.finished
    assert flow.receiver.tracker.rcv_nxt == 2000
    assert flow.sender.retransmits > 0


def test_validation():
    with pytest.raises(ConfigurationError):
        TcpConfig(delayed_ack=True, delack_timeout=0).validate()
