"""End-to-end TCP behaviour on shared bottlenecks."""

import pytest

from repro.net.monitor import QueueMonitor
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.units import transmission_time, pps_to_bps


def test_single_flow_saturates_bottleneck(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=10.0)
    flow.mark()
    sim.run(until=60.0)
    report = flow.report()
    assert report["throughput_pps"] == pytest.approx(200, rel=0.05)
    assert report["timeouts"] == 0


def test_two_flows_share_fairly(sim, two_node_net):
    jitter = transmission_time(1000, pps_to_bps(200))
    config = TcpConfig(phase_jitter=jitter)
    flows = [TcpFlow(sim, two_node_net, f"tcp-{i}", "A", "B", config=config)
             for i in range(2)]
    for index, flow in enumerate(flows):
        flow.start(0.3 * index)
    sim.run(until=20.0)
    for flow in flows:
        flow.mark()
    sim.run(until=150.0)
    rates = [flow.report()["throughput_pps"] for flow in flows]
    assert sum(rates) == pytest.approx(200, rel=0.08)
    assert min(rates) / max(rates) > 0.6  # no starvation


def test_buffer_period_oscillation(sim, two_node_net):
    """§3.1: the bottleneck buffer oscillates between near-empty and full."""
    monitor = QueueMonitor(sim, two_node_net.link("A", "B").gateway)
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=60.0)
    monitor.finish()
    assert monitor.max_depth == 20        # fills completely
    assert 2 < monitor.mean_depth() < 19  # but is not pinned full


def test_throughput_tracks_pa_window_formula(sim, two_node_net):
    """Eq 1 sanity: measured cwnd ~= sqrt(2/p) from measured cut rate."""
    from repro.models.tcp_formula import pa_window

    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=10.0)
    flow.mark()
    sim.run(until=210.0)
    report = flow.report()
    p = report["window_cuts"] / report["packets_sent"]
    predicted = pa_window(p)
    assert report["mean_cwnd"] == pytest.approx(predicted, rel=0.35)


def test_report_before_mark_uses_lifetime(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=10.0)
    report = flow.report()
    assert report["elapsed"] == pytest.approx(10.0)
    assert report["throughput_pps"] > 0
