"""TCP receiver: acknowledgment generation."""

from repro.net.node import Node
from repro.net.packet import ACK, DATA, Packet
from repro.sim.engine import Simulator
from repro.tcp.receiver import TcpReceiver


class _LoopbackNode(Node):
    """Node that records instead of routing (unit-test stub)."""

    def __init__(self):
        super().__init__("B")
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)


def _data(seq, sent_time=1.0):
    return Packet(DATA, "f", "A", "B", seq, 1000, sent_time=sent_time)


def test_ack_per_data_packet():
    sim = Simulator()
    node = _LoopbackNode()
    receiver = TcpReceiver(sim, node, "f")
    receiver.on_packet(_data(0))
    receiver.on_packet(_data(1))
    assert len(node.sent) == 2
    assert [p.ack for p in node.sent] == [1, 2]
    assert all(p.kind == ACK for p in node.sent)


def test_ack_carries_sack_blocks():
    sim = Simulator()
    node = _LoopbackNode()
    receiver = TcpReceiver(sim, node, "f")
    receiver.on_packet(_data(0))
    receiver.on_packet(_data(2))
    ack = node.sent[-1]
    assert ack.ack == 1
    assert ack.sack == ((2, 3),)


def test_ack_echoes_timestamp():
    sim = Simulator()
    node = _LoopbackNode()
    receiver = TcpReceiver(sim, node, "f")
    receiver.on_packet(_data(0, sent_time=3.25))
    assert node.sent[0].echo_ts == 3.25


def test_duplicates_counted():
    sim = Simulator()
    node = _LoopbackNode()
    receiver = TcpReceiver(sim, node, "f")
    receiver.on_packet(_data(0))
    receiver.on_packet(_data(0))
    assert receiver.duplicates == 1
    assert receiver.distinct_received == 1
    assert len(node.sent) == 2  # dup still acked (dupack)


def test_ignores_non_data():
    sim = Simulator()
    node = _LoopbackNode()
    receiver = TcpReceiver(sim, node, "f")
    receiver.on_packet(Packet(ACK, "f", "A", "B", 0, 40, ack=1))
    assert node.sent == []


def test_ack_addressed_to_data_source():
    sim = Simulator()
    node = _LoopbackNode()
    receiver = TcpReceiver(sim, node, "f")
    receiver.on_packet(_data(0))
    assert node.sent[0].dst == "A"
    assert node.sent[0].size == 40
