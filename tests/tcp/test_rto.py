"""RTT estimation and RTO computation."""

import pytest

from repro.tcp.rto import RttEstimator


def test_first_sample_initializes():
    est = RttEstimator()
    est.update(0.2)
    assert est.srtt == pytest.approx(0.2)
    assert est.rttvar == pytest.approx(0.1)


def test_smoothing_converges():
    est = RttEstimator(min_rto=0.01)
    for _ in range(200):
        est.update(0.1)
    assert est.srtt == pytest.approx(0.1, rel=1e-3)
    assert est.rttvar == pytest.approx(0.0, abs=1e-3)


def test_rto_is_srtt_plus_4_var():
    est = RttEstimator(min_rto=0.001)
    est.update(1.0)  # srtt=1, rttvar=0.5
    assert est.rto() == pytest.approx(1.0 + 4 * 0.5)


def test_rto_clamped_to_min():
    est = RttEstimator(min_rto=1.0)
    for _ in range(100):
        est.update(0.05)
    assert est.rto() == pytest.approx(1.0)


def test_rto_clamped_to_max():
    est = RttEstimator(min_rto=0.2, max_rto=2.0)
    est.update(10.0)
    assert est.rto() == 2.0


def test_backoff_doubles_and_sample_resets():
    est = RttEstimator(min_rto=0.5, max_rto=64.0)
    est.update(1.0)
    before = est.rto()
    est.backoff()
    assert est.rto() == pytest.approx(2 * before)
    est.backoff()
    assert est.rto() == pytest.approx(4 * before)
    est.update(1.0)
    assert est.rto() == pytest.approx(before, rel=0.2)


def test_conservative_rto_before_samples():
    est = RttEstimator(min_rto=1.0)
    assert est.rto() == pytest.approx(3.0)


def test_nonpositive_samples_ignored():
    est = RttEstimator()
    est.update(0.0)
    est.update(-1.0)
    assert est.samples == 0
    assert est.srtt is None


def test_mean_rtt():
    est = RttEstimator()
    est.update(0.1)
    est.update(0.3)
    assert est.mean_rtt() == pytest.approx(0.2)
    assert RttEstimator().mean_rtt() == 0.0
