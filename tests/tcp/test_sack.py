"""SACK machinery: receiver tracker and sender scoreboard."""

from hypothesis import given, settings, strategies as st

from repro.tcp.sack import ReceiverSackTracker, SenderScoreboard


# ---------------------------------------------------------------------
# receiver side
# ---------------------------------------------------------------------
def test_in_order_advances_cumack():
    tracker = ReceiverSackTracker()
    for seq in range(5):
        assert tracker.receive(seq)
    assert tracker.rcv_nxt == 5
    assert tracker.blocks() == ()


def test_gap_generates_sack_block():
    tracker = ReceiverSackTracker()
    tracker.receive(0)
    tracker.receive(2)
    tracker.receive(3)
    assert tracker.rcv_nxt == 1
    assert tracker.blocks() == ((2, 4),)


def test_hole_fill_merges():
    tracker = ReceiverSackTracker()
    for seq in (0, 2, 3, 1):
        tracker.receive(seq)
    assert tracker.rcv_nxt == 4
    assert tracker.blocks() == ()


def test_duplicate_not_new():
    tracker = ReceiverSackTracker()
    assert tracker.receive(0)
    assert not tracker.receive(0)
    tracker.receive(5)
    assert not tracker.receive(5)
    assert tracker.distinct_received == 2


def test_most_recent_block_first():
    tracker = ReceiverSackTracker()
    tracker.receive(2)   # block (2,3)
    tracker.receive(10)  # block (10,11) - most recent
    blocks = tracker.blocks()
    assert blocks[0] == (10, 11)
    assert blocks[1] == (2, 3)


def test_at_most_three_blocks():
    tracker = ReceiverSackTracker()
    for seq in (2, 4, 6, 8, 10):
        tracker.receive(seq)
    assert len(tracker.blocks()) == 3


def test_has():
    tracker = ReceiverSackTracker()
    tracker.receive(0)
    tracker.receive(3)
    assert tracker.has(0) and tracker.has(3)
    assert not tracker.has(1)


@settings(max_examples=50, deadline=None)
@given(st.permutations(list(range(12))))
def test_property_any_arrival_order_converges(order):
    tracker = ReceiverSackTracker()
    for seq in order:
        tracker.receive(seq)
    assert tracker.rcv_nxt == 12
    assert tracker.blocks() == ()
    assert tracker.distinct_received == 12


# ---------------------------------------------------------------------
# sender side
# ---------------------------------------------------------------------
def test_cumack_counts_newly_acked():
    board = SenderScoreboard()
    assert board.update(3, None) == 3
    assert board.update(3, None) == 0
    assert board.update(5, None) == 2
    assert board.snd_una == 5


def test_sack_marks_segments():
    board = SenderScoreboard()
    board.update(0, [(2, 5)])
    assert board.is_sacked(2) and board.is_sacked(4)
    assert not board.is_sacked(0)
    assert board.max_sacked == 4


def test_loss_rule_needs_dupthresh_gap():
    board = SenderScoreboard(dupthresh=3)
    board.update(0, [(1, 3)])  # max_sacked = 2 < 0 + 3
    assert not board.is_lost(0)
    board.update(0, [(3, 4)])  # max_sacked = 3 >= 0 + 3
    assert board.is_lost(0)


def test_sacked_segment_not_lost():
    board = SenderScoreboard()
    board.update(0, [(1, 10)])
    assert not board.is_lost(5)
    assert board.is_lost(0)


def test_lost_segments_enumeration():
    board = SenderScoreboard()
    board.update(0, [(1, 3), (5, 9)])
    # max_sacked = 8; candidates 0..5: 0,3,4 unsacked, limit is 8-3+1=6
    assert board.lost_segments(up_to=20) == [0, 3, 4]


def test_cumack_prunes_sack_state():
    board = SenderScoreboard()
    board.update(0, [(2, 5)])
    board.update(5, None)
    assert board.sacked_count == 0
    assert board.is_sacked(3)  # below snd_una counts as delivered


def test_cumack_implies_max_sacked():
    board = SenderScoreboard()
    board.update(7, None)
    assert board.max_sacked == 6
