"""Property-based consistency between the SACK receiver and sender views."""

from hypothesis import given, settings, strategies as st

from repro.tcp.sack import ReceiverSackTracker, SenderScoreboard


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=60))
def test_property_scoreboard_tracks_receiver(arrivals):
    """Feeding every receiver ACK into the scoreboard converges the views."""
    tracker = ReceiverSackTracker()
    board = SenderScoreboard()
    for seq in arrivals:
        tracker.receive(seq)
        board.update(tracker.rcv_nxt, tracker.blocks())
    assert board.snd_una == tracker.rcv_nxt
    # nothing SACKed is below the cumulative point
    for seq in range(board.snd_una):
        assert board.is_sacked(seq)
    # everything the receiver holds out-of-order within the last 3 reported
    # blocks is known to the sender
    for start, end in tracker.blocks():
        for seq in range(start, end):
            assert board.is_sacked(seq)


@settings(max_examples=60, deadline=None)
@given(st.sets(st.integers(0, 40), min_size=1, max_size=35))
def test_property_blocks_exactly_cover_out_of_order_data(seqs):
    """SACK blocks lie above rcv_nxt, don't overlap, and contain only
    received segments."""
    tracker = ReceiverSackTracker()
    for seq in sorted(seqs, reverse=True):  # adversarial order
        tracker.receive(seq)
    blocks = tracker.blocks()
    covered = set()
    for start, end in blocks:
        assert start >= tracker.rcv_nxt
        assert end > start
        span = set(range(start, end))
        assert not span & covered  # no overlap
        covered |= span
    assert covered <= seqs  # only really-received segments are advertised


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 25), min_size=1, max_size=50))
def test_property_rcv_nxt_monotone_and_correct(arrivals):
    tracker = ReceiverSackTracker()
    seen = set()
    last = 0
    for seq in arrivals:
        tracker.receive(seq)
        seen.add(seq)
        assert tracker.rcv_nxt >= last
        last = tracker.rcv_nxt
        # rcv_nxt is exactly the first gap
        expected = 0
        while expected in seen:
            expected += 1
        assert tracker.rcv_nxt == expected


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 5)),
                min_size=1, max_size=30))
def test_property_scoreboard_update_monotone(acks):
    """snd_una and max_sacked never regress, whatever the ACK stream."""
    board = SenderScoreboard()
    last_una, last_max = 0, -1
    for ack, width in acks:
        board.update(ack, [(ack + 2, ack + 2 + width)])
        assert board.snd_una >= last_una
        assert board.max_sacked >= last_max
        last_una, last_max = board.snd_una, board.max_sacked
