"""TCP sender unit behaviour on a two-node network."""

import pytest

from repro.net.packet import ACK, DATA, Packet
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.errors import ConfigurationError


def _drain(sim, until):
    sim.run(until=until)


def test_slow_start_doubles_window(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B",
                   config=TcpConfig(initial_ssthresh=1e9))
    flow.start()
    # RTT ~= 0.105s; after a few RTTs in pure slow start cwnd ~ 2^k
    sim.run(until=0.12)
    w1 = flow.sender.cwnd
    sim.run(until=0.24)
    w2 = flow.sender.cwnd
    assert w2 >= 2 * w1 * 0.9


def test_congestion_avoidance_linear(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B",
                   config=TcpConfig(initial_cwnd=4.0, initial_ssthresh=4.0))
    flow.start()
    sim.run(until=0.15)  # one RTT past start
    w1 = flow.sender.cwnd
    sim.run(until=0.26)
    w2 = flow.sender.cwnd
    # roughly +1 per RTT in congestion avoidance
    assert 0.5 <= w2 - w1 <= 2.0


def test_halves_once_per_congestion_event(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=60.0)
    sender = flow.sender
    # bottleneck forces repeated cuts but no timeouts on a clean path
    assert sender.window_cuts > 3
    assert sender.timeouts == 0


def test_cwnd_respects_max(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B",
                   config=TcpConfig(max_cwnd=8.0))
    flow.start()
    sim.run(until=20.0)
    assert flow.sender.cwnd <= 8.0


def test_finite_transfer_completes(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B", limit=300)
    flow.start()
    sim.run(until=60.0)
    assert flow.sender.finished
    assert flow.receiver.tracker.rcv_nxt == 300


def test_retransmissions_recover_losses(sim, two_node_net):
    # Overdrive: cwnd repeatedly overshoots the 20-packet buffer.
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B", limit=2000)
    flow.start()
    sim.run(until=120.0)
    assert flow.sender.finished
    assert flow.sender.retransmits > 0
    assert flow.receiver.tracker.rcv_nxt == 2000


def test_pipe_counts_inflight(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=0.01)
    assert flow.sender.pipe == 1  # initial window of one packet in flight
    sim.run(until=30.0)
    assert flow.sender.pipe <= flow.sender.cwnd + 1


def test_stats_snapshot_keys(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=5.0)
    stats = flow.sender.stats()
    for key in ("packets_sent", "window_cuts", "cwnd_integral", "rtt_samples"):
        assert key in stats


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        TcpConfig(initial_cwnd=0).validate()
    with pytest.raises(ConfigurationError):
        TcpConfig(min_rto=0).validate()
    with pytest.raises(ConfigurationError):
        TcpConfig(dupack_threshold=0).validate()
    with pytest.raises(ConfigurationError):
        TcpConfig(phase_jitter=-1).validate()


def test_rtt_estimate_matches_path(sim, two_node_net):
    flow = TcpFlow(sim, two_node_net, "tcp-0", "A", "B")
    flow.start()
    sim.run(until=10.0)
    # propagation 2*50ms + serialization; queueing adds more
    assert 0.1 < flow.sender.rtt.srtt < 0.3
