"""Tests for the repro.bench regression harness (suites, schema, compare)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    SCHEMA,
    SMOKE_SUITES,
    SUITES,
    compare_docs,
    load_report,
    run_benchmarks,
    write_report,
)
from repro.bench.harness import bench_scale
from repro.bench.suites import resolve


def _doc(events_per_s, duration=8.0, warmup=3.0):
    """A minimal valid document with the given per-suite events/sec."""
    return {
        "schema": SCHEMA,
        "label": "test",
        "created_unix": 0,
        "environment": {"duration": duration, "warmup": warmup},
        "suites": {
            name: {"wall_s": 1.0, "events": int(eps), "packets": 0,
                   "events_per_s": eps, "packets_per_s": 0.0}
            for name, eps in events_per_s.items()
        },
    }


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_contents():
    assert set(SUITES) == {
        "engine", "fig7", "fig9", "scenarios", "aqm_grid",
        "ensemble_cold", "ensemble_fork",
        "rla_scale_4", "rla_scale_64", "rla_scale_256", "rla_scale_1024",
        "fluid_small", "fluid_scale_100k",
    }
    assert set(SMOKE_SUITES) <= set(SUITES)
    # CI smoke runs the two smallest receiver-scaling sizes plus the
    # fluid integrator's packet-comparable twin
    assert {"rla_scale_4", "rla_scale_64",
            "fluid_small"} <= set(SMOKE_SUITES)


def test_resolve_rejects_unknown_suite():
    with pytest.raises(KeyError, match="unknown bench suite"):
        resolve(["engine", "nope"])


def test_bench_scale_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DURATION", "2.5")
    monkeypatch.setenv("REPRO_BENCH_WARMUP", "0.5")
    assert bench_scale() == {"duration": 2.5, "warmup": 0.5}
    # explicit args beat the env
    assert bench_scale(duration=1.0, warmup=0.0) == {
        "duration": 1.0, "warmup": 0.0}


# ----------------------------------------------------------------------
# harness / schema
# ----------------------------------------------------------------------
def test_run_benchmarks_engine_document(tmp_path):
    doc = run_benchmarks(names=["engine"], scale=bench_scale(1.0, 0.0),
                         label="t")
    assert doc["schema"] == SCHEMA
    row = doc["suites"]["engine"]
    assert row["events"] > 0 and row["wall_s"] > 0
    assert row["events_per_s"] == pytest.approx(
        row["events"] / row["wall_s"], rel=1e-3)
    env = doc["environment"]
    assert {"python", "platform", "cpu_count",
            "duration", "warmup"} <= set(env)
    path = tmp_path / "BENCH_t.json"
    write_report(doc, str(path))
    assert load_report(str(path))["suites"]["engine"]["events"] == row["events"]


def test_load_report_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/v9", "suites": {}}))
    with pytest.raises(ValueError, match="schema"):
        load_report(str(path))


# ----------------------------------------------------------------------
# compare
# ----------------------------------------------------------------------
def test_compare_ok_within_threshold():
    base = _doc({"engine": 1000.0, "fig7": 500.0})
    cur = _doc({"engine": 900.0, "fig7": 480.0})
    report = compare_docs(cur, base, threshold=0.25)
    assert report.ok
    assert [d.status for d in report.deltas] == ["ok", "ok"]
    assert "OK" in report.format()


def test_compare_flags_regression():
    base = _doc({"engine": 1000.0, "fig7": 500.0})
    cur = _doc({"engine": 700.0, "fig7": 500.0})
    report = compare_docs(cur, base, threshold=0.25)
    assert not report.ok
    assert [d.name for d in report.regressed] == ["engine"]
    assert "REGRESSION" in report.format()


def test_compare_improvement_and_membership_changes():
    base = _doc({"engine": 1000.0, "gone": 1.0})
    cur = _doc({"engine": 2000.0, "fresh": 1.0})
    report = compare_docs(cur, base)
    by_name = {d.name: d.status for d in report.deltas}
    assert by_name == {"engine": "improved", "gone": "removed",
                       "fresh": "new"}
    assert report.ok  # new/removed/improved never fail the check


def test_compare_scale_mismatch_flagged():
    base = _doc({"engine": 1000.0}, duration=60.0)
    cur = _doc({"engine": 1000.0}, duration=8.0)
    report = compare_docs(cur, base)
    assert report.scale_mismatch
    assert "not" in report.format()  # wall times not comparable note


def test_compare_threshold_validation():
    doc = _doc({"engine": 1.0})
    with pytest.raises(ValueError, match="threshold"):
        compare_docs(doc, copy.deepcopy(doc), threshold=1.5)


def test_compare_suites_filter_scopes_the_gate():
    base = _doc({"engine": 1000.0, "fig7": 500.0, "scenarios": 100.0})
    cur = _doc({"engine": 900.0, "fig7": 100.0})
    # unfiltered: fig7 regresses, scenarios shows up as removed
    full = compare_docs(cur, base)
    assert not full.ok
    assert {d.name for d in full.deltas} == {"engine", "fig7", "scenarios"}
    # gated on the subset actually run: the fig7 regression still fails...
    gated = compare_docs(cur, base, suites=["engine", "fig7"])
    assert {d.name for d in gated.deltas} == {"engine", "fig7"}
    assert not gated.ok
    # ...while gating on engine alone passes, and names absent from both
    # documents (a baseline predating the suite) are simply ignored
    engine_only = compare_docs(cur, base, suites=["engine", "brand_new"])
    assert engine_only.ok
    assert {d.name for d in engine_only.deltas} == {"engine"}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list_and_compare(tmp_path, capsys):
    from repro.bench.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in SUITES:
        assert name in out

    good = tmp_path / "good.json"
    slow = tmp_path / "slow.json"
    write_report(_doc({"engine": 1000.0}), str(good))
    write_report(_doc({"engine": 100.0}), str(slow))
    assert main(["compare", str(good), str(good)]) == 0
    assert main(["compare", str(slow), str(good)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
