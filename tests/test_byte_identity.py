"""Byte-identity guards for the hot-path fast paths.

The PR-4 optimizations added conditional fast paths (hook-free gateway
enqueue, the engine's same-timestamp ready batch, cached fan-out) whose
cardinal sin would be *changing results* depending on which path runs.
These tests pin the contract from both sides:

* observer variants (audited, parallel workers, explicit enqueue hooks)
  produce reports byte-identical — via :func:`pickle.dumps` — to the
  plain serial run;
* the observers demonstrably still fire, so the no-hook fast path cannot
  silently skip installed hooks.
"""

from __future__ import annotations

import pickle

from repro.experiments.fig7_droptail import run_fig7
from repro.scenarios import get_scenario, run_scenario
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.topology.restricted import RestrictedSpec, build_restricted

# Short but non-trivial: long enough for drops, retransmissions, and
# multicast fan-out to all occur.
DURATION = 6.0
WARMUP = 2.0


def _fig7_bytes(result, strip_audit=False):
    """Canonical byte serialization of one tree-experiment result."""
    stats = dict(result.stats)
    if strip_audit:
        stats.pop("audit_checks", None)
        stats.pop("violations", None)
    return pickle.dumps((result.rla, result.tcp, result.tiers,
                         result.receivers, stats))


def _scenario_bytes(row, strip_audit=False):
    """Canonical byte serialization of one scenario report row."""
    row = dict(row)
    stats = dict(row["sim_stats"])
    if strip_audit:
        stats.pop("audit_checks", None)
        stats.pop("violations", None)
    row["sim_stats"] = stats
    return pickle.dumps(row)


# ----------------------------------------------------------------------
# fig7: serial vs parallel vs audited
# ----------------------------------------------------------------------
def test_fig7_serial_parallel_byte_identical():
    serial = run_fig7(duration=DURATION, warmup=WARMUP, cases=(1,))
    parallel = run_fig7(duration=DURATION, warmup=WARMUP, cases=(1,),
                        workers=2)
    assert _fig7_bytes(serial[1]) == _fig7_bytes(parallel[1])


def test_fig7_audited_byte_identical_and_audit_ran():
    plain = run_fig7(duration=DURATION, warmup=WARMUP, cases=(1,))
    audited = run_fig7(duration=DURATION, warmup=WARMUP, cases=(1,),
                       audited=True)
    # The auditor's packet/event/deliver hooks all fired...
    assert audited[1].stats["audit_checks"] > 0
    assert audited[1].stats["violations"] == 0
    # ...yet every measurement byte matches the hook-free run.
    assert (_fig7_bytes(plain[1])
            == _fig7_bytes(audited[1], strip_audit=True))


# ----------------------------------------------------------------------
# scenario: plain vs audited
# ----------------------------------------------------------------------
def test_scenario_audited_byte_identical_and_audit_ran():
    name = "waxman-churn"
    plain = run_scenario(get_scenario(name, duration=DURATION,
                                      warmup=WARMUP))
    audited = run_scenario(get_scenario(name, duration=DURATION,
                                        warmup=WARMUP, audited=True))
    assert audited["sim_stats"]["audit_checks"] > 0
    assert audited["sim_stats"]["violations"] == 0
    assert (_scenario_bytes(plain)
            == _scenario_bytes(audited, strip_audit=True))


# ----------------------------------------------------------------------
# gateway enqueue hooks: fast path must not skip installed observers
# ----------------------------------------------------------------------
def _restricted_run(seed=7, hook_counts=None):
    """One small symmetric run; optionally install enqueue/drop hooks."""
    spec = RestrictedSpec(mu_pps=[200, 200], m=[1, 1])
    sim = Simulator(seed=seed)
    net, receivers = build_restricted(sim, spec)
    gateways = [link.gateway for link in net.links.values()]
    if hook_counts is not None:
        def enqueue_hook(now, packet, depth):
            hook_counts["enqueue"] += 1

        def drop_hook(now, packet, reason):
            hook_counts["drop"] += 1

        for gateway in gateways:
            gateway.on_enqueue(enqueue_hook)
            gateway.on_drop(drop_hook)
    flows = [TcpFlow(sim, net, f"tcp-{i}", "S", receiver,
                     config=TcpConfig())
             for i, receiver in enumerate(receivers)]
    for i, flow in enumerate(flows):
        flow.start(0.1 * i)
    sim.run(until=WARMUP)
    for flow in flows:
        flow.mark()
    sim.run(until=WARMUP + DURATION)
    return pickle.dumps((
        sim.events_executed,
        [flow.report() for flow in flows],
        [(gw.dropped, gw.peak_depth) for gw in gateways],
    ))


def test_enqueue_hooks_fire_and_do_not_change_results():
    counts = {"enqueue": 0, "drop": 0}
    without = _restricted_run()
    with_hooks = _restricted_run(hook_counts=counts)
    # Installed hooks actually observed traffic (fast path not taken)...
    assert counts["enqueue"] > 100
    # ...and observing changed nothing.
    assert without == with_hooks
