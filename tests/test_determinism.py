"""End-to-end determinism: identical seeds replay identical runs.

The paper-style A/B experiments (eta sweeps, forced-cut ablation, RED vs
drop-tail) are only meaningful if a seed pins down the entire run, so
this is a load-bearing property of the whole stack, not a nicety.
"""

from repro.rla.config import RLAConfig
from repro.rla.session import RLASession
from repro.sim.engine import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.flow import TcpFlow
from repro.topology.restricted import RestrictedSpec, build_restricted
from repro.units import pps_to_bps, transmission_time


def _run(seed):
    spec = RestrictedSpec(mu_pps=[200, 200], m=[1, 1])
    sim = Simulator(seed=seed)
    net, receivers = build_restricted(sim, spec)
    jitter = transmission_time(1000, pps_to_bps(200))
    flows = [
        TcpFlow(sim, net, f"tcp-{i}", "S", receiver,
                config=TcpConfig(phase_jitter=jitter))
        for i, receiver in enumerate(receivers)
    ]
    session = RLASession(sim, net, "rla-0", "S", receivers,
                         config=RLAConfig(phase_jitter=jitter))
    for i, flow in enumerate(flows):
        flow.start(0.1 * i)
    session.start(0.05)
    sim.run(until=30.0)
    fingerprint = (
        sim.events_executed,
        session.sender.snd_nxt,
        session.sender.max_reach_all,
        session.sender.window_cuts,
        session.sender.congestion_signals,
        round(session.sender.cwnd, 9),
        tuple(flow.sender.snd_nxt for flow in flows),
        tuple(flow.sender.window_cuts for flow in flows),
        tuple(round(flow.sender.cwnd, 9) for flow in flows),
    )
    return fingerprint


def test_same_seed_bitwise_identical():
    assert _run(1234) == _run(1234)


def test_different_seed_diverges():
    assert _run(1234) != _run(4321)


# ----------------------------------------------------------------------
# execution-mode byte identity (PR 4): the hot-path fast paths must not
# depend on how a run is executed or observed.
# ----------------------------------------------------------------------
def _strip_audit(rows):
    import copy

    rows = copy.deepcopy(rows)
    for row in rows:
        row["sim_stats"].pop("audit_checks", None)
        row["sim_stats"].pop("violations", None)
    return rows


def test_sweep_serial_parallel_audited_byte_identical():
    import pickle

    from repro.experiments.sweeps import sweep_receiver_count

    kwargs = dict(counts=(2,), duration=6.0, warmup=2.0, seed=11)
    serial = sweep_receiver_count(**kwargs)
    parallel = sweep_receiver_count(workers=2, **kwargs)
    audited = sweep_receiver_count(audited=True, **kwargs)
    assert audited[0]["sim_stats"]["audit_checks"] > 0
    blob = pickle.dumps(serial)
    assert blob == pickle.dumps(parallel)
    assert blob == pickle.dumps(_strip_audit(audited))
