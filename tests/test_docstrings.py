"""Docstring-presence enforcement for the documented packages.

Mirrors the ruff ``D1`` scope declared in pyproject.toml — modules,
public classes, and public functions/methods in :mod:`repro.sim`,
:mod:`repro.runtime`, :mod:`repro.scenarios`, :mod:`repro.bench`, and
:mod:`repro.checkpoint`, and :mod:`repro.fluid` must carry docstrings.
Implemented over the AST so it runs in
environments without ruff/pydocstyle installed (the config stays the
single source of truth for *which* packages are covered).
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterator, List, Tuple

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages covered by the D1 rule (keep in sync with pyproject.toml).
COVERED = ("sim", "runtime", "scenarios", "bench", "checkpoint", "fluid")


def _covered_files() -> List[pathlib.Path]:
    files = []
    for package in COVERED:
        files.extend(sorted((SRC / package).rglob("*.py")))
    assert files, f"no sources found under {SRC} — layout changed?"
    return files


def _public_defs(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (qualified name, node) for every public def/class."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node.name, node
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if (isinstance(sub, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                            and not sub.name.startswith("_")):
                        yield f"{node.name}.{sub.name}", sub


@pytest.mark.parametrize(
    "path", _covered_files(),
    ids=lambda p: str(p.relative_to(SRC)),
)
def test_module_and_public_api_docstrings(path: pathlib.Path) -> None:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    for name, node in _public_defs(tree):
        if ast.get_docstring(node) is None:
            missing.append(name)
    assert not missing, (
        f"{path.relative_to(SRC.parent)}: missing docstrings on "
        f"{', '.join(missing)} (D1 scope — see pyproject.toml)"
    )
