"""The exception hierarchy."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for exc in (errors.ConfigurationError, errors.SimulationError,
                errors.SchedulingError, errors.RoutingError,
                errors.TopologyError):
        assert issubclass(exc, errors.ReproError)


def test_scheduling_is_simulation_error():
    assert issubclass(errors.SchedulingError, errors.SimulationError)
    assert issubclass(errors.RoutingError, errors.SimulationError)


def test_topology_is_configuration_error():
    assert issubclass(errors.TopologyError, errors.ConfigurationError)


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.SchedulingError("late")
