"""Unit-conversion helpers."""

import pytest

from repro.errors import ConfigurationError
from repro import units


def test_bits():
    assert units.bits(1) == 8
    assert units.bits(1000) == 8000


def test_pps_bps_roundtrip():
    bps = units.pps_to_bps(100)
    assert bps == 100 * 8000
    assert units.bps_to_pps(bps) == pytest.approx(100)


def test_pps_to_bps_custom_packet_size():
    assert units.pps_to_bps(10, packet_size=500) == 10 * 4000


def test_pps_to_bps_rejects_negative_rate():
    with pytest.raises(ConfigurationError):
        units.pps_to_bps(-1)


def test_bps_to_pps_rejects_bad_packet_size():
    with pytest.raises(ConfigurationError):
        units.bps_to_pps(1e6, packet_size=0)


def test_mbps_kbps_ms():
    assert units.mbps(1) == 1e6
    assert units.kbps(64) == 64e3
    assert units.ms(5) == pytest.approx(0.005)


def test_transmission_time():
    # 1000 bytes at 1.6 Mbps (= 200 pkt/s) takes 5 ms.
    assert units.transmission_time(1000, units.pps_to_bps(200)) == pytest.approx(0.005)


def test_transmission_time_rejects_zero_bandwidth():
    with pytest.raises(ConfigurationError):
        units.transmission_time(1000, 0)


def test_default_constants():
    assert units.DEFAULT_PACKET_SIZE == 1000
    assert units.ACK_SIZE == 40
