"""The §5 experiment cases and their capacity assignments."""

import pytest

from repro.errors import TopologyError
from repro.topology.cases import (
    RTT_CASES,
    TREE_CASES,
    TreeCase,
    case_bandwidths,
    case_receivers,
    congestion_tiers,
)
from repro.topology.tree import static_tree_info
from repro.units import pps_to_bps


@pytest.fixture(scope="module")
def info():
    return static_tree_info()


def test_five_cases_defined():
    assert set(TREE_CASES) == {1, 2, 3, 4, 5}
    assert TREE_CASES[1].congested_links == ("L1",)
    assert len(TREE_CASES[3].congested_links) == 27
    assert TREE_CASES[5].congested_links == ("L21",)


def test_case_capacities_give_100pps_share(info):
    # case 1: 27 TCPs + multicast cross L1 -> 2800 pkt/s
    bw = case_bandwidths(TREE_CASES[1], info)
    assert bw["L1"] == pytest.approx(pps_to_bps(2800))
    # case 3: each leaf link carries 1 TCP + multicast -> 200 pkt/s
    bw3 = case_bandwidths(TREE_CASES[3], info)
    assert all(v == pytest.approx(pps_to_bps(200)) for v in bw3.values())
    # case 5: 9 TCPs + multicast cross L21 -> 1000 pkt/s
    bw5 = case_bandwidths(TREE_CASES[5], info)
    assert bw5["L21"] == pytest.approx(pps_to_bps(1000))


def test_case2_capacities(info):
    bw = case_bandwidths(TREE_CASES[2], info)
    assert all(v == pytest.approx(pps_to_bps(400)) for v in bw.values())


def test_tcp_per_receiver_scales_capacity(info):
    bw = case_bandwidths(TREE_CASES[3], info, tcp_per_receiver=3)
    assert bw["L41"] == pytest.approx(pps_to_bps(400))


def test_rtt_cases_use_extended_population(info):
    case = RTT_CASES[1]
    receivers = case_receivers(case, info)
    assert len(receivers) == 36
    bw = case_bandwidths(case, info)
    # TCPs run to leaves only: L21 carries 9 leaf TCPs + multicast
    assert bw["L21"] == pytest.approx(pps_to_bps(1000))


def test_rtt_case2_capacities(info):
    bw = case_bandwidths(RTT_CASES[2], info)
    # each L3 link: 3 leaf TCPs + multicast (the G3x member has no TCP)
    assert bw["L31"] == pytest.approx(pps_to_bps(400))


def test_congestion_tiers(info):
    case = TREE_CASES[4]  # L41..L45 congested
    tiers = congestion_tiers(case, info, info.leaves)
    assert tiers["more"] == [f"R{i}" for i in range(1, 6)]
    assert len(tiers["less"]) == 22


def test_congestion_tiers_all_congested(info):
    tiers = congestion_tiers(TREE_CASES[1], info, info.leaves)
    assert len(tiers["more"]) == 27
    assert tiers["less"] == []


def test_unknown_link_in_case_rejected():
    with pytest.raises(TopologyError):
        TreeCase("bad", ("L999",), "nope")


def test_bad_share_rejected(info):
    with pytest.raises(TopologyError):
        case_bandwidths(TREE_CASES[1], info, share_pps=0)


def test_unknown_population_rejected(info):
    case = TreeCase("odd", ("L1",), "x", receivers="martians")
    with pytest.raises(TopologyError):
        case_receivers(case, info)
