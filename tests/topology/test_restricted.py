"""The figure 1 restricted topology builder."""

import pytest

from repro.errors import TopologyError
from repro.sim.engine import Simulator
from repro.topology.restricted import RestrictedSpec, build_restricted
from repro.units import ms, pps_to_bps


def test_build_basic():
    sim = Simulator()
    spec = RestrictedSpec(mu_pps=[200, 400], m=[1, 2])
    net, receivers = build_restricted(sim, spec)
    assert receivers == ["R1", "R2"]
    assert net.link("G", "R1").bandwidth_bps == pytest.approx(pps_to_bps(200))
    assert net.link("G", "R2").bandwidth_bps == pytest.approx(pps_to_bps(400))


def test_equal_rtts():
    sim = Simulator()
    spec = RestrictedSpec(mu_pps=[200, 200, 200], m=[1, 1, 1])
    net, receivers = build_restricted(sim, spec)
    delays = {net.path_delay("S", r) for r in receivers}
    assert len(delays) == 1  # the restricted topology's defining property


def test_red_variant():
    from repro.net.red import REDQueue

    sim = Simulator()
    spec = RestrictedSpec(mu_pps=[200], m=[0], gateway="red")
    net, _ = build_restricted(sim, spec)
    assert isinstance(net.link("G", "R1").gateway, REDQueue)


def test_validation():
    with pytest.raises(TopologyError):
        RestrictedSpec(mu_pps=[], m=[]).validate()
    with pytest.raises(TopologyError):
        RestrictedSpec(mu_pps=[100], m=[1, 2]).validate()
    with pytest.raises(TopologyError):
        RestrictedSpec(mu_pps=[0], m=[0]).validate()
    with pytest.raises(TopologyError):
        RestrictedSpec(mu_pps=[100], m=[-1]).validate()
    with pytest.raises(TopologyError):
        RestrictedSpec(mu_pps=[100], m=[1], gateway="fifo").validate()
