"""The figure 6 tertiary tree builder."""

import pytest

from repro.errors import TopologyError
from repro.sim.engine import Simulator
from repro.topology.tree import (
    DEFAULT_BANDWIDTH,
    build_tertiary_tree,
    static_tree_info,
    tree_link_names,
)
from repro.units import ms, pps_to_bps


def test_link_name_inventory():
    names = tree_link_names()
    assert len(names) == 1 + 3 + 9 + 27
    assert names[0] == "L1"
    assert "L21" in names and "L39" in names and "L427" in names


def test_static_info_structure():
    info = static_tree_info()
    assert info.links["L1"] == ("S", "G1")
    assert info.links["L21"] == ("G1", "G21")
    assert info.links["L34"] == ("G22", "G34")
    assert info.links["L410"] == ("G34", "R10")
    assert len(info.leaves) == 27
    assert len(info.level3) == 9


def test_leaves_below():
    info = static_tree_info()
    assert info.leaves_below["L1"] == [f"R{i}" for i in range(1, 28)]
    assert info.leaves_below["L21"] == [f"R{i}" for i in range(1, 10)]
    assert info.leaves_below["L35"] == ["R13", "R14", "R15"]
    assert info.leaves_below["L47"] == ["R7"]


def test_receivers_below_with_interior_members():
    info = static_tree_info()
    population = info.leaves + info.level3
    below_l21 = info.receivers_below("L21", population)
    assert "G31" in below_l21 and "R9" in below_l21
    assert "G34" not in below_l21


def test_level_of():
    info = static_tree_info()
    assert info.level_of("L1") == 1
    assert info.level_of("L21") == 2
    assert info.level_of("L39") == 3
    assert info.level_of("L427") == 4


def test_endpoints_unknown_link():
    with pytest.raises(TopologyError):
        static_tree_info().endpoints("L99")


def test_build_tree_delays_match_paper():
    sim = Simulator()
    net, info = build_tertiary_tree(sim)
    # one-way S->leaf: 5 + 5 + 5 + 100 ms
    assert net.path_delay("S", "R1") == pytest.approx(ms(115))
    assert net.path_delay("S", "G31") == pytest.approx(ms(15))


def test_build_tree_bandwidth_overrides():
    sim = Simulator()
    net, info = build_tertiary_tree(
        sim, link_bandwidths={"L41": pps_to_bps(200)}
    )
    assert net.link("G31", "R1").bandwidth_bps == pps_to_bps(200)
    assert net.link("G31", "R2").bandwidth_bps == DEFAULT_BANDWIDTH


def test_build_tree_unknown_override_rejected():
    sim = Simulator()
    with pytest.raises(TopologyError):
        build_tertiary_tree(sim, link_bandwidths={"L99": 1.0})


def test_build_tree_red():
    from repro.net.red import REDQueue

    sim = Simulator()
    net, info = build_tertiary_tree(sim, gateway="red")
    assert isinstance(net.link("S", "G1").gateway, REDQueue)
    assert net.link("S", "G1").gateway.min_th == 5.0


def test_build_tree_unknown_gateway():
    with pytest.raises(TopologyError):
        build_tertiary_tree(Simulator(), gateway="fifo")


def test_tree_routes_built():
    sim = Simulator()
    net, _ = build_tertiary_tree(sim)
    assert net.path("R1", "S") == ["R1", "G31", "G21", "G1", "S"]
